#include "core/topology_builder.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/string_figure.hpp"

namespace sf::core {

namespace {

/** Builder working state shared by the construction steps. */
class Builder
{
  public:
    explicit Builder(const SFParams &params) : p_(params)
    {
        if (p_.numNodes < 5) {
            throw std::invalid_argument(
                "String Figure needs at least 5 nodes");
        }
        if (p_.routerPorts < 2) {
            throw std::invalid_argument(
                "String Figure needs at least 2 router ports");
        }
        data_.params = p_;
        Rng rng(p_.seed);
        data_.spaces = VirtualSpaces::generate(
            p_.numNodes, p_.numSpaces(), rng, p_.coordMode);
        if (p_.coordBits > 0)
            data_.spaces.quantize(p_.coordBits);
        data_.graph = net::Graph(p_.numNodes);
        data_.portsUsed.assign(p_.numNodes, 0);
    }

    SFTopologyData
    run()
    {
        wireRings();
        pairFreePorts();
        if (p_.buildShortcuts)
            fabricateShortcuts();
        if (p_.repairMode == RepairMode::AllSpaces)
            fabricateRepairWires();
        return std::move(data_);
    }

  private:
    bool bidir() const { return p_.linkMode == LinkMode::Bidirectional; }

    /**
     * Fabricate a wire from @p a to @p b. In bidirectional mode both
     * directions register in the inventory. Enabled wires consume
     * one port at each endpoint.
     */
    LinkId
    addWire(NodeId a, NodeId b, net::LinkKind kind, std::int16_t space,
            bool enabled)
    {
        LinkId id;
        if (bidir()) {
            id = data_.graph.addBidirectional(a, b, kind, 1, space);
            data_.wires.emplace(SFTopologyData::wireKey(a, b), id);
            data_.wires.emplace(SFTopologyData::wireKey(b, a),
                                data_.graph.link(id).pairId);
        } else {
            id = data_.graph.addLink(a, b, kind, 1, space);
            data_.wires.emplace(SFTopologyData::wireKey(a, b), id);
        }
        data_.graph.setWireEnabled(id, enabled);
        if (enabled) {
            ++data_.portsUsed[a];
            ++data_.portsUsed[b];
        }
        return id;
    }

    /** Step 2: wire every virtual space's coordinate ring. */
    void
    wireRings()
    {
        const int spaces = data_.spaces.numSpaces();
        for (int s = 0; s < spaces; ++s) {
            const auto &ring = data_.spaces.ring(s);
            for (std::size_t i = 0; i < ring.size(); ++i) {
                const NodeId u = ring[i];
                const NodeId v = ring[(i + 1) % ring.size()];
                if (u == v)
                    continue;
                if (data_.wireExists(u, v) ||
                    (bidir() && data_.wireExists(v, u))) {
                    // Adjacent in an earlier space too: the existing
                    // wire serves this ring as well, ports stay free.
                    ++data_.stats.dedupedRingLinks;
                    continue;
                }
                addWire(u, v, net::LinkKind::Ring,
                        static_cast<std::int16_t>(s), true);
                ++data_.stats.ringWires;
            }
        }
    }

    /**
     * Step 3: pair nodes that still have free ports, preferring the
     * pair with the longest minimum circular distance.
     */
    void
    pairFreePorts()
    {
        const int budget = p_.routerPorts;
        std::vector<NodeId> free;
        for (NodeId u = 0; u < p_.numNodes; ++u) {
            if (data_.portsUsed[u] < budget)
                free.push_back(u);
        }

        while (free.size() >= 2) {
            NodeId best_a = kInvalidNode;
            NodeId best_b = kInvalidNode;
            Coord best_md = -1.0;
            for (std::size_t i = 0; i < free.size(); ++i) {
                for (std::size_t j = i + 1; j < free.size(); ++j) {
                    const NodeId a = free[i];
                    const NodeId b = free[j];
                    if (data_.wireExists(a, b) ||
                        data_.wireExists(b, a))
                        continue;
                    const Coord md =
                        data_.spaces.minCircularDistance(a, b);
                    if (md > best_md) {
                        best_md = md;
                        best_a = a;
                        best_b = b;
                    }
                }
            }
            if (best_a == kInvalidNode)
                break;  // every remaining pair is already wired
            addWire(best_a, best_b, net::LinkKind::Pairing, -1, true);
            ++data_.stats.pairingWires;
            std::erase_if(free, [&](NodeId u) {
                return data_.portsUsed[u] >= budget;
            });
        }
    }

    /**
     * Step 4: fabricate the 2-/4-hop clockwise space-0 shortcuts
     * toward higher node ids; enable the ones whose endpoints still
     * have free ports.
     */
    void
    fabricateShortcuts()
    {
        std::vector<LinkId> fabricated;
        for (NodeId u = 0; u < p_.numNodes; ++u) {
            for (const std::size_t steps : {std::size_t{2},
                                            std::size_t{4}}) {
                const NodeId t = data_.spaces.ringAhead(u, 0, steps);
                if (t == u || t < u)
                    continue;  // only toward larger node numbers
                if (data_.wireExists(u, t) ||
                    (bidir() && data_.wireExists(t, u)))
                    continue;  // overlaps the basic topology
                fabricated.push_back(addWire(
                    u, t, net::LinkKind::Shortcut, 0, false));
                ++data_.stats.shortcutWires;
            }
        }
        // Activate shortcuts that fit in leftover port budget.
        for (const LinkId id : fabricated) {
            const net::Link &l = data_.graph.link(id);
            if (data_.portsUsed[l.src] < p_.routerPorts &&
                data_.portsUsed[l.dst] < p_.routerPorts) {
                data_.graph.setWireEnabled(id, true);
                ++data_.portsUsed[l.src];
                ++data_.portsUsed[l.dst];
                ++data_.stats.shortcutsEnabled;
                data_.throughputShortcuts.push_back(id);
            }
        }
    }

    /**
     * Step 5 (AllSpaces mode): dormant 2-/4-hop spare wires in every
     * space, both directions of the id ordering, so ring repair
     * works for arbitrary single- and triple-node holes.
     */
    void
    fabricateRepairWires()
    {
        const int spaces = data_.spaces.numSpaces();
        for (int s = 0; s < spaces; ++s) {
            for (NodeId u = 0; u < p_.numNodes; ++u) {
                for (const std::size_t steps : {std::size_t{2},
                                                std::size_t{4}}) {
                    const NodeId t =
                        data_.spaces.ringAhead(u, s, steps);
                    if (t == u || data_.wireExists(u, t) ||
                        (bidir() && data_.wireExists(t, u)))
                        continue;
                    addWire(u, t, net::LinkKind::Repair,
                            static_cast<std::int16_t>(s), false);
                    ++data_.stats.repairWires;
                }
            }
        }
    }

    SFParams p_;
    SFTopologyData data_;
};

} // namespace

SFTopologyData
buildTopologyData(const SFParams &params)
{
    return Builder(params).run();
}

std::shared_ptr<const net::Topology>
buildTopology(const SFParams &params)
{
    return std::make_shared<const StringFigure>(params);
}

} // namespace sf::core

/**
 * @file
 * Virtual spaces, random coordinates, and circular distances.
 *
 * String Figure logically scatters all memory nodes across
 * L = floor(p/2) virtual spaces (p = router ports). In each space a
 * node has a coordinate in [0, 1); nodes adjacent in coordinate order
 * form the per-space ring that the physical topology wires up. The
 * routing metric is the circular distance
 *     D(u, v) = min(|u - v|, 1 - |u - v|)
 * and the minimum circular distance MD(U, V) = min_i D(u_i, v_i)
 * over all spaces (paper Section III-B).
 *
 * Coordinate generation supports two modes:
 *  - UniformRandom: i.i.d. uniform coordinates (Jellyfish-style).
 *  - Balanced: evenly spaced ring slots assigned to nodes by a random
 *    permutation. Randomness comes from the permutation; balance
 *    (equal arc lengths) avoids the congestion the paper attributes
 *    to imbalanced connections. This reconstructs the paper's
 *    BalancedCoordinateGen() (Fig 4(b)), whose listing is not legible
 *    in the text; the ablation bench compares both modes.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/rng.hpp"
#include "net/types.hpp"

namespace sf::core {

/** Coordinate in [0, 1) on a virtual-space ring. */
using Coord = double;

/** Symmetric circular distance between two coordinates. */
inline Coord
circularDistance(Coord a, Coord b)
{
    const Coord d = a > b ? a - b : b - a;
    return d <= 0.5 ? d : 1.0 - d;
}

/** Clockwise (increasing-coordinate) distance from @p a to @p b. */
inline Coord
clockwiseDistance(Coord a, Coord b)
{
    const Coord d = b - a;
    return d >= 0.0 ? d : d + 1.0;
}

/** Coordinate assignment policy. */
enum class CoordMode {
    UniformRandom,  ///< i.i.d. uniform coordinates.
    Balanced,       ///< even slots, random permutation (default).
};

/**
 * Per-node coordinates in every virtual space, plus the sorted ring
 * order of each space.
 */
class VirtualSpaces
{
  public:
    VirtualSpaces() = default;

    /**
     * Generate coordinates for @p num_nodes nodes in @p num_spaces
     * spaces.
     */
    static VirtualSpaces generate(std::size_t num_nodes,
                                  int num_spaces, Rng &rng,
                                  CoordMode mode = CoordMode::Balanced);

    /** Number of virtual spaces L. */
    int numSpaces() const { return static_cast<int>(rings_.size()); }

    /** Number of nodes N. */
    std::size_t numNodes() const { return coords_.size(); }

    /** Coordinate of @p u in space @p s. */
    Coord
    coord(NodeId u, int s) const
    {
        return coords_[u][static_cast<std::size_t>(s)];
    }

    /** All coordinates of @p u (one per space). */
    const std::vector<Coord> &coords(NodeId u) const
    {
        return coords_[u];
    }

    /** Ring order of space @p s: node ids sorted by coordinate. */
    const std::vector<NodeId> &ring(int s) const
    {
        return rings_[static_cast<std::size_t>(s)];
    }

    /** Index of @p u within the ring of space @p s. */
    std::size_t
    ringIndex(NodeId u, int s) const
    {
        return ringIndex_[static_cast<std::size_t>(s)][u];
    }

    /**
     * Node @p steps positions clockwise from @p u on the static ring
     * of space @p s (ignores liveness; the reconfiguration engine
     * tracks the live ring separately).
     */
    NodeId
    ringAhead(NodeId u, int s, std::size_t steps = 1) const
    {
        const auto &r = rings_[static_cast<std::size_t>(s)];
        return r[(ringIndex(u, s) + steps) % r.size()];
    }

    /** Node @p steps positions counter-clockwise from @p u. */
    NodeId
    ringBehind(NodeId u, int s, std::size_t steps = 1) const
    {
        const auto &r = rings_[static_cast<std::size_t>(s)];
        const std::size_t n = r.size();
        return r[(ringIndex(u, s) + n - steps % n) % n];
    }

    /** Minimum circular distance between nodes @p u and @p v. */
    Coord
    minCircularDistance(NodeId u, NodeId v) const
    {
        Coord best = 1.0;
        for (int s = 0; s < numSpaces(); ++s) {
            const Coord d = circularDistance(coord(u, s), coord(v, s));
            if (d < best)
                best = d;
        }
        return best;
    }

    /**
     * Quantise all coordinates to @p bits bits (paper stores 7-bit
     * coordinates in routing tables). Collisions become possible;
     * the routing ablation measures the impact.
     */
    void quantize(int bits);

  private:
    /** coords_[node][space] */
    std::vector<std::vector<Coord>> coords_;
    /** rings_[space] = nodes sorted by coordinate */
    std::vector<std::vector<NodeId>> rings_;
    /** ringIndex_[space][node] = position in rings_[space] */
    std::vector<std::vector<std::uint32_t>> ringIndex_;

    void rebuildRings();
};

} // namespace sf::core

/**
 * @file
 * The String Figure balanced random topology construction algorithm
 * (paper Fig 4 plus shortcut generation, Fig 3(b)/(c)).
 *
 * Construction steps:
 *  1. Build L = floor(p/2) virtual spaces with random coordinates.
 *  2. Wire each space's coordinate ring (clockwise links in
 *     unidirectional mode, paired links in bidirectional mode).
 *     Duplicate adjacencies across spaces share one physical wire,
 *     which frees router ports.
 *  3. Pair remaining free ports, preferring the pair of nodes with
 *     the longest minimum circular distance (step 4 in the paper).
 *  4. Fabricate shortcut wires: each node to its 2- and 4-hop
 *     clockwise space-0 ring neighbours with a larger node id, at
 *     most two per node. Shortcuts whose endpoints still have free
 *     ports are enabled immediately; the rest stay dormant until the
 *     reconfiguration engine needs them.
 *  5. In RepairMode::AllSpaces, additionally fabricate dormant 2-
 *     and 4-hop spare wires in every space (no id restriction) so
 *     that gating any pattern with per-ring runs of one or three
 *     nodes can re-close every ring.
 *
 * A physical wire is direction-specific in unidirectional mode and a
 * pair of opposed graph links in bidirectional mode. Wires are
 * space-agnostic hardware: one wire can serve as the ring link of
 * several virtual spaces at once (that is what frees ports), and a
 * dormant spare fabricated for one space can repair another.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/coordinates.hpp"
#include "core/params.hpp"
#include "net/graph.hpp"
#include "net/topology.hpp"

namespace sf::core {

/** Everything the builder produces about one topology instance. */
struct SFTopologyData {
    SFParams params;
    VirtualSpaces spaces;
    net::Graph graph;

    /**
     * Directed wire inventory: key (from << 32 | to) -> link id of
     * the from->to graph link. Bidirectional wires appear under both
     * directions. Covers ring, pairing, shortcut, and repair wires,
     * enabled or dormant.
     */
    std::unordered_map<std::uint64_t, LinkId> wires;

    /** Ports in use per node (enabled incident wire endpoints). */
    std::vector<int> portsUsed;

    /**
     * Canonical link ids of shortcuts activated at build time for
     * extra throughput (leftover ports); the reconfiguration engine
     * re-enables them whenever both endpoints are live.
     */
    std::vector<LinkId> throughputShortcuts;

    /** Build statistics for reporting and tests. */
    struct Stats {
        std::size_t ringWires = 0;        ///< distinct ring wires
        std::size_t dedupedRingLinks = 0; ///< adjacencies sharing a wire
        std::size_t pairingWires = 0;
        std::size_t shortcutWires = 0;    ///< fabricated shortcuts
        std::size_t shortcutsEnabled = 0; ///< active at build time
        std::size_t repairWires = 0;      ///< extra AllSpaces spares
    } stats;

    /** Wire lookup key. */
    static std::uint64_t
    wireKey(NodeId from, NodeId to)
    {
        return (static_cast<std::uint64_t>(from) << 32) | to;
    }

    /**
     * Link id of the fabricated wire from @p a to @p b (enabled or
     * dormant), or kInvalidLink if no such wire exists.
     */
    LinkId
    findWire(NodeId a, NodeId b) const
    {
        const auto it = wires.find(wireKey(a, b));
        return it == wires.end() ? kInvalidLink : it->second;
    }

    /** True when a wire a->b (or the shared b->a pair) exists. */
    bool
    wireExists(NodeId a, NodeId b) const
    {
        return findWire(a, b) != kInvalidLink;
    }

    /** Router port budget per node. */
    int portBudget() const { return params.routerPorts; }
};

/** Run the construction algorithm (raw builder output). */
SFTopologyData buildTopologyData(const SFParams &params);

/**
 * Build a fully deployed String Figure network (construction,
 * routing tables, reconfiguration engine) as a shared immutable
 * topology. Immutable-shared is the ownership model every analysis
 * and simulation consumer uses: one instance may serve any number
 * of concurrent runs. Callers that need to gate/reconfigure
 * construct a private core::StringFigure instead.
 */
std::shared_ptr<const net::Topology>
buildTopology(const SFParams &params);

} // namespace sf::core

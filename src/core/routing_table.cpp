#include "core/routing_table.hpp"

#include <algorithm>

namespace sf::core {

void
RoutingTable::rebuild(NodeId self, const net::Graph &g)
{
    entries_.clear();

    // One-hop entries: destinations of enabled out-links. A wire can
    // serve several virtual spaces; it still yields one entry.
    std::vector<NodeId> one_hop;
    for (LinkId id : g.outLinks(self)) {
        const net::Link &l = g.link(id);
        if (!l.enabled || l.dst == self)
            continue;
        if (std::find(one_hop.begin(), one_hop.end(), l.dst) !=
            one_hop.end())
            continue;  // parallel wire to the same neighbour
        one_hop.push_back(l.dst);
        entries_.push_back(TableEntry{l.dst, id, 1, true, false});
    }

    // Two-hop entries: the one-hop neighbours' own out-neighbours.
    // Skip self and nodes already present as one-hop entries; keep
    // the first path found for each two-hop neighbour.
    const std::size_t n_one_hop = entries_.size();
    for (std::size_t i = 0; i < n_one_hop; ++i) {
        const TableEntry first = entries_[i];
        for (LinkId id : g.outLinks(first.node)) {
            const net::Link &l = g.link(id);
            if (!l.enabled || l.dst == self)
                continue;
            const auto known = std::find_if(
                entries_.begin(), entries_.end(),
                [&](const TableEntry &e) { return e.node == l.dst; });
            if (known != entries_.end())
                continue;
            entries_.push_back(
                TableEntry{l.dst, first.viaLink, 2, true, false});
        }
    }
}

void
RoutingTable::setBlocking(NodeId node, bool value)
{
    for (TableEntry &e : entries_) {
        if (e.node == node)
            e.blocking = value;
    }
}

void
RoutingTables::rebuildAll(const net::Graph &g)
{
    tables_.assign(g.numNodes(), RoutingTable{});
    maxEntries_ = 0;
    for (NodeId u = 0; u < g.numNodes(); ++u)
        rebuildNode(u, g);
}

void
RoutingTables::rebuildNode(NodeId u, const net::Graph &g)
{
    tables_[u].rebuild(u, g);
    maxEntries_ = std::max(maxEntries_, tables_[u].size());
}

} // namespace sf::core

/**
 * @file
 * Build-time parameters of a String Figure topology.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "core/coordinates.hpp"

namespace sf::core {

/** Wire directionality (paper Section IV evaluates both). */
enum class LinkMode {
    /**
     * Clockwise-only ring wires; the routing metric is the directed
     * (clockwise) circular distance. Lower cost; the paper's default.
     */
    Unidirectional,
    /** Each wire carries both directions; symmetric metric. */
    Bidirectional,
};

/** Which spare wires exist for reconfiguration ring repair. */
enum class RepairMode {
    /**
     * Only the paper's space-0 shortcuts (2-/4-hop clockwise,
     * higher-id targets). Gating can leave ring holes in other
     * spaces; greedy stalls are resolved by a fallback next-hop and
     * counted.
     */
    ShortcutsOnly,
    /**
     * 2-/4-hop spare wires in every space without the id
     * restriction, so any gating pattern with per-ring runs of 1 or
     * 3 is repairable and the loop-freedom argument survives.
     * Costs ~2 extra (dormant) wires per node per space. Default.
     */
    AllSpaces,
};

/** All knobs of the String Figure construction algorithm. */
struct SFParams {
    /** Number of memory nodes N (arbitrary; no power-of-two rule). */
    std::size_t numNodes = 64;
    /** Router ports p, excluding the terminal port. */
    int routerPorts = 4;
    /** Topology generation seed. */
    std::uint64_t seed = 1;
    LinkMode linkMode = LinkMode::Unidirectional;
    RepairMode repairMode = RepairMode::AllSpaces;
    /** Balanced (default) or i.i.d. uniform coordinates. */
    CoordMode coordMode = CoordMode::Balanced;
    /** Fabricate space-0 shortcuts (paper always does). */
    bool buildShortcuts = true;
    /** Use 2-hop routing-table entries as lookahead (paper: yes). */
    bool twoHopTable = true;
    /**
     * Coordinate precision in bits for routing tables; 0 keeps exact
     * double coordinates (default). The paper's hardware uses 7.
     */
    int coordBits = 0;

    /** Number of virtual spaces L = floor(p / 2). */
    int numSpaces() const { return routerPorts / 2; }
};

} // namespace sf::core

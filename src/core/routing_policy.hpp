#pragma once
/**
 * @file
 * The routing-policy seam: every route decision the simulator makes
 * flows through one `RoutingPolicy::route()` call — a *pure*
 * function of (immutable topology, packet destination/first-hop
 * flag, per-cycle congestion snapshot). Purity is the load-bearing
 * property, not a style choice: the sharded route plane (PR 5)
 * computes head-packet routes concurrently at a per-cycle barrier,
 * and the total-event-order constraint (ROADMAP) only admits
 * parallelism inside phases whose outputs are independent of
 * evaluation order. A policy that read *live* queue state would
 * observe mid-cycle arbitration effects and break byte-identity
 * across shard counts; instead, congestion-aware policies read a
 * `CongestionSnapshot` frozen once per cycle before any routing —
 * so serial, sharded, and cached engines all see identical inputs
 * and produce identical events.
 *
 * Three policies ship behind the seam:
 *  - `greedy`       — the incumbent: delegates to the topology's own
 *                     `routeCandidates` (space-shuffle greedy on SF,
 *                     DOR on meshes, ...). Congestion-independent,
 *                     therefore cacheable by `core::RouteCache`.
 *  - `ugal`         — UGAL-L-style adaptive routing: at injection,
 *                     compare the best minimal out-link against the
 *                     best Valiant-style non-minimal detour by
 *                     queue-depth x estimated-hop-count products
 *                     from the snapshot; after the first hop, route
 *                     minimally on a BFS distance table (strictly
 *                     decreasing distance, hence loop-free).
 *  - `table_oracle` — static all-pairs shortest-path next-hop
 *                     tables: the topology-independent upper bound
 *                     greedy routing is racing against.
 *
 * Adaptive decisions are congestion-*dependent*, so they are
 * uncacheable by construction: `RouteCache` keys are (node, dest,
 * first-hop) only, and a snapshot can never be part of the key
 * (it changes every cycle). `NetworkModel::enableRouteCache()`
 * therefore refuses to engage the cache unless the active policy
 * reports `cacheable()`. See docs/routing_policies.md.
 */

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "net/topology.hpp"

namespace sf::core {

/** Selectable routing policy (`sfx --policy`, SimConfig::policy). */
enum class RoutingPolicyKind : std::uint8_t {
    Greedy = 0,
    Ugal = 1,
    TableOracle = 2,
};

inline constexpr RoutingPolicyKind kAllRoutingPolicies[] = {
    RoutingPolicyKind::Greedy,
    RoutingPolicyKind::Ugal,
    RoutingPolicyKind::TableOracle,
};

/** CLI/report spelling: "greedy", "ugal", "table_oracle". */
std::string routingPolicyName(RoutingPolicyKind kind);

/** Parse a policy name; returns false on an unknown spelling. */
bool parseRoutingPolicy(std::string_view name,
                        RoutingPolicyKind &out);

/**
 * Read-only view of per-link queued flits, frozen once per cycle in
 * `NetworkModel::step()` *before* any route is computed that cycle
 * (the same barrier the sharded route plane fans out from). The
 * value for a link is the sum of `flitsReserved` across all of its
 * virtual channels — flits committed to land in that link's input
 * buffers, the engine's natural queue-depth estimate.
 *
 * An empty snapshot (congestion-oblivious policy, or a route asked
 * for before the first cycle) reads as zero congestion everywhere,
 * which every policy must treat as "route minimally".
 */
class CongestionSnapshot
{
  public:
    CongestionSnapshot() = default;
    explicit CongestionSnapshot(
        std::span<const std::uint32_t> queued)
        : queued_(queued)
    {
    }

    /** Queued flits headed into `link`; 0 when no snapshot. */
    std::uint32_t queuedFlits(LinkId link) const
    {
        const auto i = static_cast<std::size_t>(link);
        return i < queued_.size() ? queued_[i] : 0u;
    }

    bool empty() const { return queued_.empty(); }

  private:
    std::span<const std::uint32_t> queued_{};
};

/**
 * A routing policy. `route()` must be a pure function of the
 * constructor topology, its arguments, and state rebuilt only by
 * `onTopologyChanged()` — it is called concurrently from route-plane
 * shards with no synchronisation, so it must not mutate anything.
 * Escape-channel routing, dead-destination handling and delivery
 * short-circuits stay in the engine; a policy only answers "which
 * enabled out-links may this normal-VC packet take next".
 */
class RoutingPolicy
{
  public:
    virtual ~RoutingPolicy() = default;

    virtual RoutingPolicyKind kind() const = 0;

    /**
     * Fill `out` (capacity >= 1) with candidate out-links from
     * `current` toward `dest`, best first; returns the count (0 =
     * no route, the engine escalates to the escape channel).
     * `first_hop` mirrors `Topology::routeCandidates`: injection
     * may fan out alternatives, later hops commit to one choice.
     */
    virtual std::size_t route(NodeId current, NodeId dest,
                              bool first_hop,
                              const CongestionSnapshot &congestion,
                              std::span<LinkId> out) const = 0;

    /**
     * True when decisions are congestion-independent, i.e. a pure
     * function of (node, dest, first_hop) — the exact key space of
     * `core::RouteCache`. Adaptive policies must return false; the
     * engine then never engages the cache (satisfying the
     * cache/adaptive mutual-exclusion contract).
     */
    virtual bool cacheable() const { return false; }

    /** True when `route()` reads the snapshot: the engine only
     *  pays for the per-cycle snapshot fill if someone reads it. */
    virtual bool congestionAware() const { return false; }

    /**
     * Rebuild derived state (distance tables) after the topology
     * reconfigured. Called on the serial engine thread with the
     * route executor already retired, so an eager rebuild here is
     * race-free; `route()` itself must stay const.
     */
    virtual void onTopologyChanged() {}
};

/** Build a policy bound to `topo` (which must outlive it). */
std::unique_ptr<RoutingPolicy>
makeRoutingPolicy(RoutingPolicyKind kind, const net::Topology &topo);

} // namespace sf::core

/**
 * @file
 * Per-router routing tables (paper Fig 6(b)).
 *
 * Each router keeps one entry per one- or two-hop neighbour: the
 * neighbour's node number, the first-hop output link that reaches
 * it, a hop bit (1- vs 2-hop), a valid bit, and a blocking bit used
 * by the atomic reconfiguration protocol. Neighbour coordinates are
 * read from the shared VirtualSpaces (hardware stores them in the
 * entry; the routing decision is identical). The paper bounds the
 * table at p(p+1) entries; tests assert the bound on the basic
 * topology and the high-water mark is reported after
 * reconfiguration, where repair wires can introduce neighbours that
 * were 4 ring hops away.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "net/types.hpp"

namespace sf::core {

/** One routing-table row. */
struct TableEntry {
    NodeId node = kInvalidNode;  ///< The 1-/2-hop neighbour.
    LinkId viaLink = kInvalidLink;  ///< First-hop link toward it.
    std::uint8_t hops = 1;       ///< Hop bit: 1 or 2.
    bool valid = true;
    bool blocking = false;

    /** Usable for forwarding decisions right now? */
    bool usable() const { return valid && !blocking; }
};

/** Routing table of a single router. */
class RoutingTable
{
  public:
    /** Rebuild from the enabled out-links of @p self in @p g. */
    void rebuild(NodeId self, const net::Graph &g);

    const std::vector<TableEntry> &entries() const { return entries_; }

    /** Set the blocking bit on every entry referring to @p node. */
    void setBlocking(NodeId node, bool value);

    /** Number of entries (valid or not). */
    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<TableEntry> entries_;
};

/** All routers' tables plus bookkeeping. */
class RoutingTables
{
  public:
    RoutingTables() = default;

    /** Build tables for every node of @p g. */
    void rebuildAll(const net::Graph &g);

    /** Rebuild the table of one node after local link changes. */
    void rebuildNode(NodeId u, const net::Graph &g);

    const RoutingTable &table(NodeId u) const { return tables_[u]; }
    RoutingTable &table(NodeId u) { return tables_[u]; }

    std::size_t numNodes() const { return tables_.size(); }

    /** Largest table size ever observed (paper bound: p(p+1)). */
    std::size_t maxEntriesSeen() const { return maxEntries_; }

  private:
    std::vector<RoutingTable> tables_;
    std::size_t maxEntries_ = 0;
};

} // namespace sf::core

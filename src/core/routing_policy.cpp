/**
 * @file
 * Routing-policy implementations behind the seam declared in
 * routing_policy.hpp. The greedy policy is a zero-state delegate to
 * the topology's own routing (so routing "through the seam" is the
 * incumbent behaviour, byte for byte); the adaptive (UGAL-L-style)
 * and oracle policies share an all-pairs BFS distance table over
 * *enabled* links, rebuilt eagerly on reconfiguration while the
 * engine is serial. Every `route()` is const and touches only
 * immutable state + the frozen per-cycle snapshot, which is what
 * lets the sharded route plane call them concurrently.
 */

#include "core/routing_policy.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "net/paths.hpp"

namespace sf::core {

namespace {

/** The incumbent: whatever the topology's native routing says
 *  (space-shuffle greedy on SF/S2, DOR on meshes, ...). A pure
 *  function of (node, dest, first_hop), hence cacheable. */
class GreedyPolicy final : public RoutingPolicy
{
  public:
    explicit GreedyPolicy(const net::Topology &topo) : topo_(&topo)
    {
    }

    RoutingPolicyKind kind() const override
    {
        return RoutingPolicyKind::Greedy;
    }

    std::size_t route(NodeId current, NodeId dest, bool first_hop,
                      const CongestionSnapshot & /*congestion*/,
                      std::span<LinkId> out) const override
    {
        return topo_->routeCandidates(current, dest, first_hop,
                                      out);
    }

    bool cacheable() const override { return true; }

  private:
    const net::Topology *topo_;
};

/**
 * Shared base for table-driven policies: an all-pairs BFS distance
 * table over enabled links. Rebuilt eagerly in the constructor and
 * in onTopologyChanged() (both run on the serial engine thread, the
 * route executor retired), so `dist()` is immutable whenever
 * route-plane shards are live.
 */
class DistanceTablePolicy : public RoutingPolicy
{
  public:
    explicit DistanceTablePolicy(const net::Topology &topo)
        : topo_(&topo)
    {
        rebuild();
    }

    void onTopologyChanged() override { rebuild(); }

  protected:
    std::uint16_t dist(NodeId u, NodeId v) const
    {
        return dist_[static_cast<std::size_t>(u) * n_ + v];
    }

    const net::Topology &topo() const { return *topo_; }

  private:
    void rebuild()
    {
        n_ = topo_->numNodes();
        dist_ = net::distanceTable(topo_->graph());
    }

    const net::Topology *topo_;
    std::size_t n_ = 0;
    std::vector<std::uint16_t> dist_;
};

/** Static shortest-path next-hop tables: the upper bound. Emits
 *  every equal-cost shortest out-link (up to the engine's candidate
 *  cap) in deterministic out-link order. */
class TableOraclePolicy final : public DistanceTablePolicy
{
  public:
    using DistanceTablePolicy::DistanceTablePolicy;

    RoutingPolicyKind kind() const override
    {
        return RoutingPolicyKind::TableOracle;
    }

    std::size_t route(NodeId current, NodeId dest, bool first_hop,
                      const CongestionSnapshot & /*congestion*/,
                      std::span<LinkId> out) const override
    {
        const int base = dist(current, dest);
        if (base == 0 || base == net::kUnreachable ||
            out.empty())
            return 0;
        // Mirror the greedy contract: injection may fan out
        // equal-cost alternatives, later hops commit to one.
        const std::size_t cap =
            first_hop ? std::min(out.size(),
                                 std::size_t{
                                     net::kMaxRouteCandidates})
                      : std::size_t{1};
        const net::Graph &g = topo().graph();
        std::size_t count = 0;
        for (const LinkId id : g.outLinks(current)) {
            const net::Link &l = g.link(id);
            if (!l.enabled)
                continue;
            if (dist(l.dst, dest) + 1 != base)
                continue;
            out[count++] = id;
            if (count == cap)
                break;
        }
        return count;
    }
};

/**
 * UGAL-L-style adaptive routing, made deterministic. At injection
 * (first hop) the policy weighs the best *minimal* out-link m
 * against the best *non-minimal* detour d using the classic UGAL
 * product of local queue depth x estimated remaining hops, all
 * read from the frozen snapshot:
 *
 *     take d  iff  q(d) * (1 + dist(d.dst, dest))
 *                     <  q(m) * dist(current, dest)
 *
 * Zero congestion makes both sides 0, so the strict `<` falls back
 * to minimal — the classic UGAL tie-towards-minimal. After the
 * first hop the packet routes minimally on the distance table
 * (strictly decreasing distance per hop => loop-free and bounded,
 * even when hop 1 was a detour). Ties everywhere break to the
 * lowest-index out-link, so the decision is a pure deterministic
 * function of (topology, packet, snapshot) — exactly what the
 * sharded route plane requires.
 */
class UgalPolicy final : public DistanceTablePolicy
{
  public:
    using DistanceTablePolicy::DistanceTablePolicy;

    RoutingPolicyKind kind() const override
    {
        return RoutingPolicyKind::Ugal;
    }

    bool congestionAware() const override { return true; }

    std::size_t route(NodeId current, NodeId dest, bool first_hop,
                      const CongestionSnapshot &congestion,
                      std::span<LinkId> out) const override
    {
        const int base = dist(current, dest);
        if (base == 0 || base == net::kUnreachable ||
            out.empty())
            return 0;
        const net::Graph &g = topo().graph();
        LinkId minimal = kInvalidLink;
        std::uint64_t minimal_q = 0;
        LinkId detour = kInvalidLink;
        std::uint64_t detour_cost =
            std::numeric_limits<std::uint64_t>::max();
        std::uint64_t detour_hops = 0;
        for (const LinkId id : g.outLinks(current)) {
            const net::Link &l = g.link(id);
            if (!l.enabled)
                continue;
            const int d = dist(l.dst, dest);
            if (d == net::kUnreachable)
                continue;
            const std::uint64_t q = congestion.queuedFlits(id);
            if (d + 1 == base) {
                if (minimal == kInvalidLink || q < minimal_q) {
                    minimal = id;
                    minimal_q = q;
                }
            } else if (first_hop) {
                const std::uint64_t hops = 1ull +
                                           static_cast<std::uint64_t>(d);
                const std::uint64_t cost = q * hops;
                if (cost < detour_cost ||
                    (cost == detour_cost && hops < detour_hops)) {
                    detour = id;
                    detour_cost = cost;
                    detour_hops = hops;
                }
            }
        }
        if (minimal == kInvalidLink) {
            // Every minimal next hop is gated off. The detour (if
            // any) is still loop-free by the decreasing-distance
            // argument from *its* endpoint; otherwise report no
            // route and let the engine escalate to escape.
            if (detour == kInvalidLink)
                return 0;
            out[0] = detour;
            return 1;
        }
        if (first_hop && detour != kInvalidLink &&
            detour_cost <
                minimal_q * static_cast<std::uint64_t>(base)) {
            out[0] = detour;
            return 1;
        }
        out[0] = minimal;
        return 1;
    }
};

} // namespace

std::string
routingPolicyName(RoutingPolicyKind kind)
{
    switch (kind) {
    case RoutingPolicyKind::Greedy:
        return "greedy";
    case RoutingPolicyKind::Ugal:
        return "ugal";
    case RoutingPolicyKind::TableOracle:
        return "table_oracle";
    }
    return "greedy";
}

bool
parseRoutingPolicy(std::string_view name, RoutingPolicyKind &out)
{
    for (const RoutingPolicyKind kind : kAllRoutingPolicies) {
        if (name == routingPolicyName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::unique_ptr<RoutingPolicy>
makeRoutingPolicy(RoutingPolicyKind kind, const net::Topology &topo)
{
    switch (kind) {
    case RoutingPolicyKind::Ugal:
        return std::make_unique<UgalPolicy>(topo);
    case RoutingPolicyKind::TableOracle:
        return std::make_unique<TableOraclePolicy>(topo);
    case RoutingPolicyKind::Greedy:
    default:
        return std::make_unique<GreedyPolicy>(topo);
    }
}

} // namespace sf::core

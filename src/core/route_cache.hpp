/**
 * @file
 * Memoized route plane: per-topology next-hop tables that turn the
 * dominant greedy-routing cost into array lookups.
 *
 * `Topology::routeCandidates` is a pure function of the immutable
 * topology — that purity is what let the route plane shard (PR 5) —
 * but sharding only divides the cost. At near-saturation n=1024 the
 * same (current, dest) pairs are re-derived millions of times per
 * run (table scan + per-entry multi-space distances + ranking). The
 * RouteCache memoizes the virtual call at the simulator's span size
 * (net::kMaxRouteCandidates), so a repeat lookup is one or two
 * array reads. A cached value is literally the same pure function's
 * output, so the simulated event stream is byte-identical with the
 * cache on or off — validity rests only on the topology staying
 * immutable (see docs/greedy_routing.md; NetworkModel retires the
 * cache on any reconfiguration).
 *
 * Two independent tables, both lazily filled on first miss:
 *
 *  - the **committed** table (first_hop = false): one byte per
 *    (current, dest) holding an index into
 *    `graph().outLinks(current)`. String Figure commits non-first
 *    hops to the single greediest choice (widen=false in
 *    GreedyRouter), so one link almost always suffices; topologies
 *    that ignore `first_hop` and emit several equal-cost candidates
 *    anyway (mesh parallel wires, table-routed shortest-path sets)
 *    mark the entry *uncacheable* and every lookup falls through to
 *    the direct virtual call — correctness never depends on the
 *    widen semantics of a Topology subclass. n^2 bytes = 1 MB at
 *    n = 1024.
 *
 *  - the **first-hop** table (first_hop = true): count plus up to
 *    kMaxRouteCandidates out-link indices per (source, dest) — the
 *    ranked widened set adaptive injection picks from. Touched only
 *    for pairs that actually inject, 5 bytes each.
 *
 * Rows (one per `current`) are allocated on first touch, so memory
 * tracks the pairs a run actually routes. Concurrent use: the
 * sharded route plane partitions nodes into contiguous blocks and a
 * shard only ever looks up its own nodes as `current`, so each row
 * is read and written by exactly one thread per cycle barrier —
 * plain stores, no atomics, TSan-clean by ownership (the row
 * pointers themselves are pre-sized and never resized).
 */

#pragma once

#include <memory>
#include <span>
#include <vector>

#include "net/topology.hpp"

namespace sf::core {

/**
 * Memoizes `topo.routeCandidates(current, dest, first_hop, out)`
 * for spans of net::kMaxRouteCandidates entries (the simulator's
 * packet-record size). One instance per NetworkModel; valid only
 * while the topology is immutable.
 */
class RouteCache
{
  public:
    explicit RouteCache(const net::Topology &topo);

    /**
     * False when the topology cannot be index-encoded (an
     * out-degree beyond the one-byte sentinel space — far above
     * anything this library builds); callers then keep the direct
     * virtual call.
     */
    bool active() const { return active_; }

    /**
     * Drop-in replacement for Topology::routeCandidates at the
     * simulator's span size: identical links, identical count, from
     * the cache when the pair was seen before. Writes at most
     * min(out.size(), kMaxRouteCandidates) entries.
     */
    std::size_t candidates(NodeId current, NodeId dest,
                           bool first_hop, std::span<LinkId> out);

    /** Committed-table rows allocated so far (tests/bench). */
    std::size_t committedRows() const;
    /** First-hop-table rows allocated so far (tests/bench). */
    std::size_t firstHopRows() const;

  private:
    // Committed-table byte encoding. Values below kNoRoute are
    // indices into graph().outLinks(current).
    static constexpr std::uint8_t kUnfilled = 0xFF;
    static constexpr std::uint8_t kUncacheable = 0xFE;
    static constexpr std::uint8_t kNoRoute = 0xFD;

    /** One first-hop entry: ranked prefix as out-link indices. */
    struct FirstHopEntry {
        std::uint8_t count = kUnfilled;  ///< kUnfilled until seen
        std::uint8_t idx[net::kMaxRouteCandidates] = {};
    };

    std::size_t committedLookup(NodeId current, NodeId dest,
                                std::span<LinkId> out);
    std::size_t firstHopLookup(NodeId current, NodeId dest,
                               std::span<LinkId> out);
    /** Index of @p link in outLinks(@p current), or -1. */
    int outIndexOf(NodeId current, LinkId link) const;

    const net::Topology *topo_;
    std::size_t n_;
    bool active_ = false;
    /** Per-`current` rows of n_ bytes, allocated on first touch. */
    std::vector<std::unique_ptr<std::uint8_t[]>> committed_;
    /** Per-`current` rows of n_ entries, allocated on first touch. */
    std::vector<std::unique_ptr<FirstHopEntry[]>> firstHop_;
};

} // namespace sf::core

/**
 * @file
 * Up*-down* escape routing (Autonet-style).
 *
 * The simulator gives every network one escape virtual channel on
 * which packets follow up*-down* routes: links are classified "up"
 * (toward a BFS root) or "down", and a legal route takes zero or
 * more up links followed by zero or more down links. Because the
 * up-phase strictly ascends the tree ordering and the down-phase
 * strictly descends it, the channel dependency graph on the escape
 * VC is acyclic, so packets on it always drain — a topology-agnostic
 * deadlock safety net (Duato's protocol). A packet that waits too
 * long on its normal VC transfers to the escape VC and stays there.
 *
 * This module computes, for a given Graph, the next-hop table of the
 * escape network: nextLink(u, dest) such that following it repeatedly
 * reaches dest along a legal up*-down* path.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"

namespace sf::net {

/** Up*-down* next-hop tables over the enabled links of one graph. */
class UpDownRouting
{
  public:
    /**
     * Build the tables.
     *
     * @param alive Optional liveness mask: gated nodes are excluded.
     */
    explicit UpDownRouting(const Graph &g,
                           const std::vector<bool> &alive = {});

    /**
     * Next link from @p u toward @p dest.
     *
     * @param up_phase_allowed False once the packet has taken a down
     *        link; up links are then illegal.
     * @return Link id, or kInvalidLink if unreachable.
     */
    LinkId nextLink(NodeId u, NodeId dest,
                    bool up_phase_allowed) const;

    /** True when the link classifies as "up". */
    bool isUp(LinkId id) const { return isUp_[id]; }

    /** Whether @p dest is reachable from @p u at all. */
    bool
    reachable(NodeId u, NodeId dest) const
    {
        return u == dest ||
               nextLink(u, dest, true) != kInvalidLink;
    }

  private:
    std::size_t n_ = 0;
    /** Tree level of each node (BFS distance from the root). */
    std::vector<std::uint16_t> level_;
    std::vector<bool> isUp_;
    /**
     * Per (node, dest): best next link when still in the up phase
     * and when restricted to the down phase. kInvalidLink = none.
     */
    std::vector<LinkId> nextUpPhase_;
    std::vector<LinkId> nextDownPhase_;
};

} // namespace sf::net

#include "net/topology_cache.hpp"

namespace sf::net {

std::size_t
TopologyKeyHash::operator()(const TopologyKey &key) const
{
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix_byte = [&h](unsigned char b) {
        h ^= b;
        h *= 1099511628211ULL;
    };
    const auto mix_u64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            mix_byte(static_cast<unsigned char>(v >> (8 * i)));
    };
    for (const char c : key.kind)
        mix_byte(static_cast<unsigned char>(c));
    mix_u64(key.nodes);
    mix_u64(key.seed);
    for (const char c : key.variant)
        mix_byte(static_cast<unsigned char>(c));
    return static_cast<std::size_t>(h);
}

TopologyCache::TopologyCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

std::shared_ptr<const Topology>
TopologyCache::getOrBuild(const TopologyKey &key,
                          const Builder &build)
{
    std::promise<std::shared_ptr<const Topology>> promise;
    Future future;
    bool owner = false;
    std::uint64_t my_gen = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            ++stats_.hits;
            touch(it->second, key);
            future = it->second.future;
        } else {
            ++stats_.misses;
            owner = true;
            my_gen = ++generation_;
            Entry entry;
            entry.future = promise.get_future().share();
            entry.generation = my_gen;
            lru_.push_front(key);
            entry.lruPos = lru_.begin();
            future = entry.future;
            map_.emplace(key, std::move(entry));
            // The new entry sits at the LRU front, so it survives
            // this sweep even at capacity 1.
            evictDownTo(capacity_);
        }
    }
    if (owner) {
        // Build outside the lock: other keys stay available, and
        // same-key requesters block only on the shared future.
        try {
            promise.set_value(build());
        } catch (...) {
            promise.set_exception(std::current_exception());
            // Drop the failed entry (if it is still ours) so a
            // later request can retry the build.
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = map_.find(key);
            if (it != map_.end() &&
                it->second.generation == my_gen) {
                lru_.erase(it->second.lruPos);
                map_.erase(it);
            }
        }
    }
    return future.get();
}

TopologyCache::Stats
TopologyCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
TopologyCache::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::size_t
TopologyCache::capacity() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
TopologyCache::setCapacity(std::size_t capacity)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity ? capacity : 1;
    evictDownTo(capacity_);
}

void
TopologyCache::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    evictDownTo(0);
}

void
TopologyCache::touch(Entry &entry, const TopologyKey &key)
{
    lru_.erase(entry.lruPos);
    lru_.push_front(key);
    entry.lruPos = lru_.begin();
}

void
TopologyCache::evictDownTo(std::size_t limit)
{
    while (map_.size() > limit) {
        const TopologyKey victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        ++stats_.evictions;
    }
}

} // namespace sf::net

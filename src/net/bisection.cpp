#include "net/bisection.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace sf::net {

namespace {

/** Minimal Dinic max-flow on an integer-capacity residual graph. */
class Dinic
{
  public:
    explicit Dinic(std::size_t n) : adj_(n), level_(n), iter_(n) {}

    void
    addEdge(std::size_t u, std::size_t v, std::uint32_t cap)
    {
        adj_[u].push_back(edges_.size());
        edges_.push_back({v, cap});
        adj_[v].push_back(edges_.size());
        edges_.push_back({u, 0});
    }

    std::uint64_t
    run(std::size_t s, std::size_t t)
    {
        std::uint64_t flow = 0;
        while (bfs(s, t)) {
            std::fill(iter_.begin(), iter_.end(), 0u);
            while (std::uint64_t pushed = dfs(s, t, kInf))
                flow += pushed;
        }
        return flow;
    }

  private:
    struct Edge { std::size_t to; std::uint32_t cap; };

    static constexpr std::uint64_t kInf =
        std::numeric_limits<std::uint64_t>::max();

    bool
    bfs(std::size_t s, std::size_t t)
    {
        std::fill(level_.begin(), level_.end(), -1);
        std::vector<std::size_t> queue{s};
        level_[s] = 0;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const std::size_t u = queue[head];
            for (std::size_t ei : adj_[u]) {
                const Edge &e = edges_[ei];
                if (e.cap > 0 && level_[e.to] < 0) {
                    level_[e.to] = level_[u] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        return level_[t] >= 0;
    }

    std::uint64_t
    dfs(std::size_t u, std::size_t t, std::uint64_t limit)
    {
        if (u == t)
            return limit;
        for (std::uint32_t &i = iter_[u]; i < adj_[u].size(); ++i) {
            const std::size_t ei = adj_[u][i];
            Edge &e = edges_[ei];
            if (e.cap == 0 || level_[e.to] != level_[u] + 1)
                continue;
            const std::uint64_t pushed =
                dfs(e.to, t, std::min<std::uint64_t>(limit, e.cap));
            if (pushed > 0) {
                e.cap -= static_cast<std::uint32_t>(pushed);
                edges_[ei ^ 1].cap +=
                    static_cast<std::uint32_t>(pushed);
                return pushed;
            }
        }
        return 0;
    }

    std::vector<Edge> edges_;
    std::vector<std::vector<std::size_t>> adj_;
    std::vector<int> level_;
    std::vector<std::uint32_t> iter_;
};

} // namespace

std::uint64_t
maxFlow(const Graph &g, const std::vector<NodeId> &sources,
        const std::vector<NodeId> &sinks)
{
    const std::size_t n = g.numNodes();
    // Layout: [0, n) nodes, n = super-source, n + 1 = super-sink.
    Dinic dinic(n + 2);
    const std::size_t super_s = n;
    const std::size_t super_t = n + 1;
    constexpr std::uint32_t kBig = 1u << 30;

    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        const Link &l = g.link(id);
        if (l.enabled)
            dinic.addEdge(l.src, l.dst, 1);
    }
    for (NodeId s : sources)
        dinic.addEdge(super_s, s, kBig);
    for (NodeId t : sinks)
        dinic.addEdge(t, super_t, kBig);
    return dinic.run(super_s, super_t);
}

std::uint64_t
minBisectionBandwidth(const Graph &g, Rng &rng, int partitions)
{
    const std::size_t n = g.numNodes();
    assert(n >= 2);
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0u);

    // Random partitions estimate the minimum well on random
    // topologies but badly overestimate it on grids, whose worst
    // split is contiguous; always include the id-contiguous split
    // (the central cut under row-major grid numbering).
    std::vector<NodeId> half_a(order.begin(), order.begin() + n / 2);
    std::vector<NodeId> half_b(order.begin() + n / 2, order.end());
    std::uint64_t best = maxFlow(g, half_a, half_b);

    for (int i = 0; i < partitions; ++i) {
        rng.shuffle(order);
        half_a.assign(order.begin(), order.begin() + n / 2);
        half_b.assign(order.begin() + n / 2, order.end());
        best = std::min(best, maxFlow(g, half_a, half_b));
    }
    return best;
}

} // namespace sf::net

/**
 * @file
 * Keyed, thread-safe cache of shared immutable topologies.
 *
 * Experiment sweeps evaluate hundreds of (topology, n, seed, rate)
 * grid cells, and most cells of a sweep route over the *same*
 * generated network. Topologies are immutable once built (the
 * mutating experiments construct private instances and never go
 * through this cache), so one build can serve every concurrent run:
 * the cache stores `std::shared_ptr<const Topology>` under a
 * (kind, nodes, seed, variant) key.
 *
 * Concurrency contract:
 *  - getOrBuild() is safe from any number of threads.
 *  - Concurrent requests for the same key trigger exactly one
 *    builder invocation; the other requesters block on the shared
 *    future and receive the same instance (counted as hits).
 *  - A builder that throws propagates to every waiter of that
 *    round and the entry is dropped, so a later request retries.
 *
 * Eviction is LRU with a bounded entry count. Evicting an entry
 * only drops the cache's reference: runs still holding the
 * shared_ptr keep their topology alive.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/topology.hpp"

namespace sf::net {

/** Cache key: the complete identity of a generated topology. */
struct TopologyKey {
    /** Design name ("SF", "ODM", ...). */
    std::string kind;
    std::size_t nodes = 0;
    std::uint64_t seed = 0;
    /** Extra construction parameters ("odm=2"); empty if none. */
    std::string variant;

    bool operator==(const TopologyKey &other) const = default;
};

/** FNV-1a over the key fields. */
struct TopologyKeyHash {
    std::size_t operator()(const TopologyKey &key) const;
};

/** Thread-safe LRU cache of immutable topologies. */
class TopologyCache {
  public:
    using Builder =
        std::function<std::shared_ptr<const Topology>()>;

    /** Default capacity: every design/scale of a full sweep. */
    static constexpr std::size_t kDefaultCapacity = 128;

    explicit TopologyCache(std::size_t capacity = kDefaultCapacity);

    /**
     * Return the cached topology for @p key, invoking @p build at
     * most once per resident key. Blocks (without holding the cache
     * lock) while another thread builds the same key.
     */
    std::shared_ptr<const Topology>
    getOrBuild(const TopologyKey &key, const Builder &build);

    /** Hit/miss/eviction counters (monotonic; clear() keeps them). */
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };
    Stats stats() const;

    /** Resident entry count (includes in-flight builds). */
    std::size_t size() const;

    std::size_t capacity() const;

    /**
     * Change the capacity; shrinking evicts least-recently-used
     * entries immediately.
     */
    void setCapacity(std::size_t capacity);

    /** Drop every resident entry (counters are preserved). */
    void clear();

  private:
    using Future =
        std::shared_future<std::shared_ptr<const Topology>>;

    struct Entry {
        Future future;
        /** Position in lru_ (most recent at the front). */
        std::list<TopologyKey>::iterator lruPos;
        /** Insertion id: lets a failed build drop exactly its own
         *  entry even if the key was evicted and re-inserted. */
        std::uint64_t generation = 0;
    };

    /** Move @p it to the front of the LRU list. Lock held. */
    void touch(Entry &entry, const TopologyKey &key);

    /** Evict LRU entries down to @p limit. Lock held. */
    void evictDownTo(std::size_t limit);

    mutable std::mutex mutex_;
    std::unordered_map<TopologyKey, Entry, TopologyKeyHash> map_;
    std::list<TopologyKey> lru_;
    std::size_t capacity_;
    std::uint64_t generation_ = 0;
    Stats stats_;
};

} // namespace sf::net

/**
 * @file
 * Empirical bisection bandwidth via max-flow over random partitions.
 *
 * The paper equalises topologies by bisection bandwidth: for random
 * topologies (String Figure, S2) it computes the maximum flow between
 * two random halves of the node set, takes the minimum over 50 random
 * partitions, and averages the result over 20 generated topologies
 * (Section V, "Bisection bandwidth"). This module reproduces that
 * methodology with a Dinic max-flow solver; each enabled directed
 * link carries unit capacity.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "net/rng.hpp"

namespace sf::net {

/**
 * Max flow between node sets @p sources and @p sinks with unit link
 * capacities (Dinic's algorithm on a super-source/super-sink
 * augmented graph).
 */
std::uint64_t maxFlow(const Graph &g,
                      const std::vector<NodeId> &sources,
                      const std::vector<NodeId> &sinks);

/**
 * Empirical minimum bisection bandwidth of one topology instance:
 * the minimum max-flow over @p partitions random balanced splits.
 *
 * @param rng Source of randomness for the partitions.
 */
std::uint64_t minBisectionBandwidth(const Graph &g, Rng &rng,
                                    int partitions = 50);

} // namespace sf::net

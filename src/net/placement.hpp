/**
 * @file
 * 2D grid placement of memory nodes and wire-length modelling.
 *
 * The paper places memory nodes on a PCB/interposer as a 2D grid and
 * adds one extra hop of latency per wire length of ten grid units
 * (Section IV, "Physical Implementation"). Placement quality matters:
 * String Figure prioritises placing one- and two-hop neighbours close
 * together (within ten grid units). This module provides row-major
 * placement, an order-driven placement (callers order nodes by their
 * space-0 coordinate to cluster ring neighbours, the MetaCube-style
 * layout), and latency annotation of a Graph from the placement.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"

namespace sf::net {

/** Position of a node on the placement grid. */
struct GridPos {
    std::int32_t x = 0;
    std::int32_t y = 0;
};

/** Assignment of every node to a grid coordinate. */
class Placement
{
  public:
    /** Row-major placement of @p n nodes on a near-square grid. */
    static Placement rowMajor(std::size_t n);

    /**
     * Snake-order placement following @p order: consecutive entries
     * of @p order land on adjacent grid cells (rows alternate
     * direction), so ring neighbours stay physically close when
     * @p order sorts nodes by their space-0 coordinate.
     */
    static Placement snakeOrder(const std::vector<NodeId> &order);

    /** Grid position of @p u. */
    GridPos pos(NodeId u) const { return pos_[u]; }

    /** Number of placed nodes. */
    std::size_t numNodes() const { return pos_.size(); }

    /** Grid side length (columns). */
    std::int32_t columns() const { return cols_; }

    /** Manhattan wire length between two nodes, in grid units. */
    std::uint32_t
    wireLength(NodeId u, NodeId v) const
    {
        const GridPos a = pos_[u];
        const GridPos b = pos_[v];
        return static_cast<std::uint32_t>(
            std::abs(a.x - b.x) + std::abs(a.y - b.y));
    }

    /**
     * Link latency in cycles from wire length: one base cycle plus
     * one extra hop per @p span grid units of wire (paper: span 10).
     */
    std::uint32_t
    linkLatency(NodeId u, NodeId v, std::uint32_t span = 10) const
    {
        return 1 + wireLength(u, v) / span;
    }

    /** Fraction of enabled links no longer than @p span grid units. */
    double shortLinkFraction(const Graph &g,
                             std::uint32_t span = 10) const;

    /** Average wire length over enabled links, in grid units. */
    double averageWireLength(const Graph &g) const;

  private:
    std::vector<GridPos> pos_;
    std::int32_t cols_ = 0;
};

/**
 * Overwrite every link's latency in @p g from the placement
 * (1 cycle + 1 per ten grid units of Manhattan wire length).
 */
void applyPlacementLatency(Graph &g, const Placement &placement,
                           std::uint32_t span = 10);

} // namespace sf::net

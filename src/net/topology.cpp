#include "net/topology.hpp"

namespace sf::net {

RoutedProbe
probeRoutedHops(const Topology &topo, Rng &rng, int samples)
{
    RoutedProbe probe;
    const std::size_t n = topo.numNodes();
    double sum = 0.0;
    const auto attempt = [&](NodeId s, NodeId t) {
        if (s == t || !topo.nodeAlive(s) || !topo.nodeAlive(t))
            return;
        ++probe.attempted;
        const int hops = routedHops(topo, s, t);
        if (hops > 0) {
            sum += hops;
            ++probe.delivered;
        }
    };
    if (samples <= 0) {
        for (NodeId s = 0; s < n; ++s)
            for (NodeId t = 0; t < n; ++t)
                attempt(s, t);
    } else {
        for (int i = 0; i < samples; ++i) {
            // Sequenced draws: argument evaluation order is
            // unspecified, and src/dst assignment must not depend
            // on the compiler for reports to compare across builds.
            const auto s = static_cast<NodeId>(rng.below(n));
            const auto t = static_cast<NodeId>(rng.below(n));
            attempt(s, t);
        }
    }
    if (probe.delivered)
        probe.avgHops = sum / static_cast<double>(probe.delivered);
    if (probe.attempted)
        probe.deliveredPct =
            100.0 * static_cast<double>(probe.delivered) /
            static_cast<double>(probe.attempted);
    return probe;
}

} // namespace sf::net

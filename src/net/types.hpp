/**
 * @file
 * Fundamental identifier types shared across the String Figure
 * libraries.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace sf {

/** Identifier of a memory node (and of its integrated router). */
using NodeId = std::uint32_t;

/** Identifier of a directed link in a network graph. */
using LinkId = std::int32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode =
    std::numeric_limits<NodeId>::max();

/** Sentinel for "no link". */
inline constexpr LinkId kInvalidLink = -1;

/** Simulator time, measured in network-clock cycles. */
using Cycle = std::uint64_t;

} // namespace sf

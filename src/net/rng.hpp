/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (topology generation,
 * traffic, workloads) flows through this generator so that every
 * experiment is reproducible from a single seed. The implementation
 * is SplitMix64 seeded xoshiro256**, which is fast, has good
 * statistical quality, and is fully portable (unlike std::mt19937
 * whose distributions differ across standard libraries).
 */

#pragma once

#include <cstdint>
#include <string_view>

namespace sf {

/**
 * Incremental FNV-1a over @p text, continuing from @p h (pass the
 * previous return value to chain several fragments). The library's
 * one canonical string hash: run seeds (exp::deriveSeed), checkpoint
 * entry names, checksums, and spec hashes all derive from it, so
 * the constants live in exactly one place.
 */
inline std::uint64_t
fnv1a64(std::string_view text,
        std::uint64_t h = 14695981039346656037ULL)
{
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/** Small, fast, deterministic random number generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) works. */
    explicit Rng(std::uint64_t seed = 0x5f19f16eULL) { reseed(seed); }

    /** Re-initialise the state from @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 to spread the seed across the state.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value (xoshiro256**). */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        for (std::size_t i = c.size(); i > 1; --i) {
            const std::size_t j = below(i);
            std::swap(c[i - 1], c[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace sf

#include "net/paths.hpp"

#include <algorithm>
#include <cassert>

namespace sf::net {

std::vector<std::uint16_t>
bfsDistances(const Graph &g, NodeId src,
             const std::vector<bool> &restrict_to)
{
    const std::size_t n = g.numNodes();
    std::vector<std::uint16_t> dist(n, kUnreachable);
    if (!restrict_to.empty() && !restrict_to[src])
        return dist;

    std::vector<NodeId> queue;
    queue.reserve(n);
    queue.push_back(src);
    dist[src] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const NodeId u = queue[head];
        const std::uint16_t du = dist[u];
        for (LinkId id : g.outLinks(u)) {
            const Link &l = g.link(id);
            if (!l.enabled)
                continue;
            const NodeId v = l.dst;
            if (!restrict_to.empty() && !restrict_to[v])
                continue;
            if (dist[v] == kUnreachable) {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    return dist;
}

PathStats
allPairsStats(const Graph &g, const std::vector<bool> &alive)
{
    const std::size_t n = g.numNodes();
    PathStats stats;
    // Histogram over hop counts; diameters here are tiny (< 200).
    std::vector<std::size_t> histogram(256, 0);
    double sum = 0.0;

    for (NodeId src = 0; src < n; ++src) {
        if (!alive.empty() && !alive[src])
            continue;
        const auto dist = bfsDistances(g, src, alive);
        for (NodeId dst = 0; dst < n; ++dst) {
            if (dst == src || (!alive.empty() && !alive[dst]))
                continue;
            if (dist[dst] == kUnreachable) {
                ++stats.unreachablePairs;
                continue;
            }
            ++stats.reachablePairs;
            sum += dist[dst];
            stats.diameter = std::max(stats.diameter, dist[dst]);
            if (dist[dst] < histogram.size())
                ++histogram[dist[dst]];
        }
    }

    if (stats.reachablePairs > 0) {
        stats.average = sum / static_cast<double>(stats.reachablePairs);
        const auto pct = [&](double q) -> std::uint16_t {
            const auto target = static_cast<std::size_t>(
                q * static_cast<double>(stats.reachablePairs - 1));
            std::size_t seen = 0;
            for (std::size_t h = 0; h < histogram.size(); ++h) {
                seen += histogram[h];
                if (seen > target)
                    return static_cast<std::uint16_t>(h);
            }
            return stats.diameter;
        };
        stats.p10 = pct(0.10);
        stats.p90 = pct(0.90);
    }
    return stats;
}

std::vector<std::uint16_t>
distanceTable(const Graph &g)
{
    const std::size_t n = g.numNodes();
    std::vector<std::uint16_t> table;
    table.reserve(n * n);
    for (NodeId src = 0; src < n; ++src) {
        const auto row = bfsDistances(g, src);
        table.insert(table.end(), row.begin(), row.end());
    }
    return table;
}

bool
stronglyConnected(const Graph &g, const std::vector<bool> &alive)
{
    const std::size_t n = g.numNodes();
    std::size_t live_count = 0;
    NodeId first_alive = kInvalidNode;
    for (NodeId u = 0; u < n; ++u) {
        if (alive.empty() || alive[u]) {
            ++live_count;
            if (first_alive == kInvalidNode)
                first_alive = u;
        }
    }
    if (live_count <= 1)
        return true;

    // Forward reachability from one live node...
    const auto fwd = bfsDistances(g, first_alive, alive);
    std::size_t reached = 0;
    for (NodeId u = 0; u < n; ++u) {
        if ((alive.empty() || alive[u]) && fwd[u] != kUnreachable)
            ++reached;
    }
    if (reached != live_count)
        return false;

    // ...and from every live node back to it (cheap early-exit scan
    // would be O(n^2); instead BFS the reversed graph).
    Graph reversed(n);
    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        const Link &l = g.link(id);
        if (l.enabled)
            reversed.addLink(l.dst, l.src, l.kind, l.latency, l.space);
    }
    const auto bwd = bfsDistances(reversed, first_alive, alive);
    reached = 0;
    for (NodeId u = 0; u < n; ++u) {
        if ((alive.empty() || alive[u]) && bwd[u] != kUnreachable)
            ++reached;
    }
    return reached == live_count;
}

} // namespace sf::net

/**
 * @file
 * Shortest-path analysis over a Graph.
 *
 * Used for: average/percentile shortest path lengths (paper Fig 5 and
 * Fig 9(a) methodology), connectivity checks in tests, and the
 * precomputed minimal-routing tables that implement "minimal +
 * adaptive" routing on mesh and flattened-butterfly baselines.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"

namespace sf::net {

/** Distance value for unreachable node pairs. */
inline constexpr std::uint16_t kUnreachable = 0xffff;

/**
 * Hop distances from @p src to every node over enabled links.
 *
 * @param restrict_to Optional mask; when non-empty, nodes with a
 *        false entry are treated as absent (gated off).
 */
std::vector<std::uint16_t>
bfsDistances(const Graph &g, NodeId src,
             const std::vector<bool> &restrict_to = {});

/** Summary statistics over all reachable ordered node pairs. */
struct PathStats {
    double average = 0.0;     ///< Mean shortest path length (hops).
    std::uint16_t diameter = 0;   ///< Max shortest path length.
    std::uint16_t p10 = 0;    ///< 10th percentile path length.
    std::uint16_t p90 = 0;    ///< 90th percentile path length.
    std::size_t reachablePairs = 0;
    std::size_t unreachablePairs = 0;
};

/**
 * All-pairs shortest path statistics (BFS from every node).
 *
 * @param alive Optional liveness mask (gated nodes excluded both as
 *        sources and destinations).
 */
PathStats allPairsStats(const Graph &g,
                        const std::vector<bool> &alive = {});

/**
 * Full N x N hop-distance table.
 *
 * Row u holds distances from u; kUnreachable marks disconnected
 * pairs. ~3.4 MB at N=1296 with 16-bit entries.
 */
std::vector<std::uint16_t> distanceTable(const Graph &g);

/** True when every node can reach every other over enabled links. */
bool stronglyConnected(const Graph &g,
                       const std::vector<bool> &alive = {});

} // namespace sf::net

/**
 * @file
 * Directed multigraph with per-link metadata.
 *
 * Every network topology in this library is lowered to a Graph:
 * nodes are routers (one per memory node) and links are directed
 * point-to-point channels. Bidirectional wires are represented as a
 * pair of opposed directed links sharing a @c pairId. Links carry a
 * latency (cycles), an enable flag (driven by the reconfiguration
 * engine / topology switch), and a user tag identifying their origin
 * (ring link, pairing link, shortcut, ...).
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace sf::net {

/** Classification of how a link came to exist in a topology. */
enum class LinkKind : std::uint8_t {
    Ring,       ///< Ring link in one virtual space (or mesh/FB base).
    Pairing,    ///< Free-port pairing link (builder step 4).
    Shortcut,   ///< Pre-fabricated spare wire (2-/4-hop shortcut).
    Repair,     ///< Ring-repair wire enabled when a node is gated.
    Express,    ///< Extra parallel channel (ODM link duplication).
    Local,      ///< Processor/terminal attachment.
};

/** A directed point-to-point channel between two routers. */
struct Link {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    /** Propagation latency in network cycles (>= 1). */
    std::uint32_t latency = 1;
    /** Opposed link of a bidirectional pair, or kInvalidLink. */
    LinkId pairId = kInvalidLink;
    LinkKind kind = LinkKind::Ring;
    /** Virtual space the link belongs to (or -1 if none). */
    std::int16_t space = -1;
    /** Live? Disabled links are invisible to routing and paths. */
    bool enabled = true;
};

/** Directed multigraph of routers and channels. */
class Graph
{
  public:
    /** Create a graph with @p n nodes and no links. */
    explicit Graph(std::size_t n = 0) : outAdj_(n), inAdj_(n) {}

    /** Number of nodes. */
    std::size_t numNodes() const { return outAdj_.size(); }

    /** Number of links ever added (enabled or not). */
    std::size_t numLinks() const { return links_.size(); }

    /**
     * Add one directed link.
     *
     * @return The id of the new link.
     */
    LinkId
    addLink(NodeId src, NodeId dst, LinkKind kind = LinkKind::Ring,
            std::uint32_t latency = 1, std::int16_t space = -1)
    {
        assert(src < numNodes() && dst < numNodes());
        const LinkId id = static_cast<LinkId>(links_.size());
        links_.push_back(Link{src, dst, latency, kInvalidLink, kind,
                              space, true});
        outAdj_[src].push_back(id);
        inAdj_[dst].push_back(id);
        return id;
    }

    /**
     * Add a bidirectional wire as two opposed directed links.
     *
     * @return The id of the forward (u -> v) link; the backward link
     *         is its pairId.
     */
    LinkId
    addBidirectional(NodeId u, NodeId v,
                     LinkKind kind = LinkKind::Ring,
                     std::uint32_t latency = 1, std::int16_t space = -1)
    {
        const LinkId fwd = addLink(u, v, kind, latency, space);
        const LinkId bwd = addLink(v, u, kind, latency, space);
        links_[fwd].pairId = bwd;
        links_[bwd].pairId = fwd;
        return fwd;
    }

    /** Access a link record. */
    const Link &link(LinkId id) const { return links_[id]; }

    /** Mutable link access (latency/enable updates). */
    Link &link(LinkId id) { return links_[id]; }

    /** Enable or disable a link (and not its pair). */
    void setEnabled(LinkId id, bool on) { links_[id].enabled = on; }

    /**
     * Enable or disable a link together with its paired reverse
     * direction, if any.
     */
    void
    setWireEnabled(LinkId id, bool on)
    {
        links_[id].enabled = on;
        if (links_[id].pairId != kInvalidLink)
            links_[links_[id].pairId].enabled = on;
    }

    /** Ids of links leaving @p u (including disabled ones). */
    const std::vector<LinkId> &outLinks(NodeId u) const
    {
        return outAdj_[u];
    }

    /** Ids of links entering @p u (including disabled ones). */
    const std::vector<LinkId> &inLinks(NodeId u) const
    {
        return inAdj_[u];
    }

    /** Enabled out-neighbours of @p u (dst of each enabled link). */
    std::vector<NodeId>
    neighborsOut(NodeId u) const
    {
        std::vector<NodeId> result;
        result.reserve(outAdj_[u].size());
        for (LinkId id : outAdj_[u]) {
            if (links_[id].enabled)
                result.push_back(links_[id].dst);
        }
        return result;
    }

    /** Out-degree of @p u counting only enabled links. */
    std::size_t
    degreeOut(NodeId u) const
    {
        std::size_t d = 0;
        for (LinkId id : outAdj_[u])
            d += links_[id].enabled ? 1 : 0;
        return d;
    }

    /** In-degree of @p u counting only enabled links. */
    std::size_t
    degreeIn(NodeId u) const
    {
        std::size_t d = 0;
        for (LinkId id : inAdj_[u])
            d += links_[id].enabled ? 1 : 0;
        return d;
    }

    /** Number of enabled links in the whole graph. */
    std::size_t
    numEnabledLinks() const
    {
        std::size_t n = 0;
        for (const Link &l : links_)
            n += l.enabled ? 1 : 0;
        return n;
    }

    /**
     * Find an enabled link u -> v.
     *
     * @return Its id, or kInvalidLink if absent.
     */
    LinkId
    findLink(NodeId u, NodeId v) const
    {
        for (LinkId id : outAdj_[u]) {
            if (links_[id].enabled && links_[id].dst == v)
                return id;
        }
        return kInvalidLink;
    }

    /** Human-readable summary (node/link counts, degree range). */
    std::string summary() const;

  private:
    std::vector<Link> links_;
    std::vector<std::vector<LinkId>> outAdj_;
    std::vector<std::vector<LinkId>> inAdj_;
};

} // namespace sf::net

#include "net/updown.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "net/paths.hpp"

namespace sf::net {

namespace {

constexpr std::uint32_t kInf =
    std::numeric_limits<std::uint32_t>::max();

} // namespace

UpDownRouting::UpDownRouting(const Graph &g,
                             const std::vector<bool> &alive)
    : n_(g.numNodes())
{
    const auto is_alive = [&](NodeId u) {
        return alive.empty() || alive[u];
    };

    // Tree levels: BFS from the first live node over the enabled
    // links treated as undirected (the escape network only needs a
    // consistent ordering, not direction-specific reachability).
    Graph undirected(n_);
    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        const Link &l = g.link(id);
        if (l.enabled && is_alive(l.src) && is_alive(l.dst)) {
            undirected.addLink(l.src, l.dst);
            undirected.addLink(l.dst, l.src);
        }
    }
    NodeId root = kInvalidNode;
    for (NodeId u = 0; u < n_ && root == kInvalidNode; ++u) {
        if (is_alive(u))
            root = u;
    }
    level_.assign(n_, kUnreachable);
    if (root != kInvalidNode)
        level_ = bfsDistances(undirected, root);

    // Link classification: "up" strictly ascends (level, id).
    isUp_.assign(g.numLinks(), false);
    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        const Link &l = g.link(id);
        isUp_[id] = std::pair(level_[l.dst], l.dst) <
                    std::pair(level_[l.src], l.src);
    }

    // Node processing order for the up-phase DP: ascending (level,
    // id), so every up link's target is processed before its source.
    std::vector<NodeId> order(n_);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return std::pair(level_[a], a) < std::pair(level_[b], b);
    });

    nextUpPhase_.assign(n_ * n_, kInvalidLink);
    nextDownPhase_.assign(n_ * n_, kInvalidLink);
    std::vector<std::uint32_t> d_down(n_);
    std::vector<std::uint32_t> d_any(n_);

    for (NodeId t = 0; t < n_; ++t) {
        if (!is_alive(t))
            continue;
        // Down-phase distances: BFS from t over reversed down links.
        std::fill(d_down.begin(), d_down.end(), kInf);
        d_down[t] = 0;
        std::vector<NodeId> queue{t};
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const NodeId v = queue[head];
            for (LinkId id : g.inLinks(v)) {
                const Link &l = g.link(id);
                if (!l.enabled || isUp_[id] || !is_alive(l.src))
                    continue;
                if (d_down[l.src] == kInf) {
                    d_down[l.src] = d_down[v] + 1;
                    queue.push_back(l.src);
                }
            }
        }
        for (NodeId u = 0; u < n_; ++u) {
            if (d_down[u] == kInf || u == t || !is_alive(u))
                continue;
            for (LinkId id : g.outLinks(u)) {
                const Link &l = g.link(id);
                if (l.enabled && !isUp_[id] && is_alive(l.dst) &&
                    d_down[l.dst] + 1 == d_down[u]) {
                    nextDownPhase_[u * n_ + t] = id;
                    break;
                }
            }
        }

        // Up-phase DP in ascending (level, id) order: an up link's
        // destination always precedes its source, so d_any of the
        // target is final when the source is processed.
        std::copy(d_down.begin(), d_down.end(), d_any.begin());
        for (NodeId u : order) {
            if (u == t || !is_alive(u))
                continue;
            LinkId best_link = nextDownPhase_[u * n_ + t];
            for (LinkId id : g.outLinks(u)) {
                const Link &l = g.link(id);
                if (!l.enabled || !isUp_[id] || !is_alive(l.dst))
                    continue;
                if (d_any[l.dst] != kInf &&
                    d_any[l.dst] + 1 < d_any[u]) {
                    d_any[u] = d_any[l.dst] + 1;
                    best_link = id;
                }
            }
            nextUpPhase_[u * n_ + t] = best_link;
        }
    }
}

LinkId
UpDownRouting::nextLink(NodeId u, NodeId dest,
                        bool up_phase_allowed) const
{
    if (u == dest)
        return kInvalidLink;
    return up_phase_allowed ? nextUpPhase_[u * n_ + dest]
                            : nextDownPhase_[u * n_ + dest];
}

} // namespace sf::net

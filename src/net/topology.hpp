/**
 * @file
 * Abstract interface every network topology implements.
 *
 * The flit simulator, the analysis helpers, and the benchmark
 * harnesses are all topology-agnostic: they consume this interface.
 * A topology owns its link graph and its routing function; routing is
 * exposed as "candidate output links" so the simulator can apply
 * adaptive (congestion-aware) selection among them.
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "net/rng.hpp"
#include "net/types.hpp"

namespace sf::net {

/**
 * Candidate capacity the simulator's routing fast path provides:
 * routeCandidates() writes into a caller-owned span and the flit
 * simulator sizes it at this many entries (one cache line of the
 * packet record). Analysis callers may pass larger spans to see the
 * full ranked set.
 */
inline constexpr std::size_t kMaxRouteCandidates = 4;

/** Static feature flags reported in the paper's Table II. */
struct TopologyFeatures {
    bool requiresHighRadix = false;  ///< Needs many-port routers?
    bool portCountScales = false;    ///< Ports grow with N?
    bool reconfigurable = false;     ///< Supports elastic scaling?
};

/**
 * Deadlock-safety scheme of the simulator's escape virtual channel.
 *
 * UpDown assumes every wire is usable in both directions (mesh, FB,
 * bidirectional random graphs). Ring follows a directed cycle
 * covering all live nodes (String Figure / S2's space-0 ring) with a
 * dateline VC switch, which also works for unidirectional wiring.
 */
enum class EscapeScheme { UpDown, Ring };

/** Abstract routed network topology. */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Short name for reports ("SF", "ODM", "AFB", ...). */
    virtual std::string name() const = 0;

    /** The link graph (directed; disabled links are gated off). */
    virtual const Graph &graph() const = 0;

    /** Number of memory nodes. */
    std::size_t numNodes() const { return graph().numNodes(); }

    /** Router radix p (network ports, excluding the terminal port). */
    virtual int routerPorts() const = 0;

    /**
     * Candidate output links for a packet at @p current heading to
     * @p dest, in decreasing order of preference. Candidates beyond
     * the first are alternatives an adaptive selector may use.
     * Zero means no enabled progress-making link exists (only
     * possible during/after reconfiguration in degraded modes;
     * callers fall back or count a stall).
     *
     * Writes at most @c out.size() link ids into @p out — the
     * caller owns the storage, so the per-hop fast path allocates
     * nothing. Implementations rank internally and emit a prefix:
     * truncation keeps the best candidates.
     *
     * @param first_hop True at the packet's source router; String
     *        Figure only widens the adaptive choice there.
     * @return Number of candidates written.
     */
    virtual std::size_t routeCandidates(NodeId current, NodeId dest,
                                        bool first_hop,
                                        std::span<LinkId> out)
        const = 0;

    /**
     * Number of deadlock-avoidance virtual-channel classes the
     * routing function needs (String Figure: 2).
     */
    virtual int numVcClasses() const { return 1; }

    /** Deadlock VC class for a packet from @p src to @p dst. */
    virtual int
    vcClass(NodeId src, NodeId dst) const
    {
        (void)src;
        (void)dst;
        return 0;
    }

    /**
     * Escape next-hop for packets whose normal routing stalled
     * (possible only in degraded reconfiguration states). Once a
     * packet takes an escape hop it must keep using escape hops
     * until delivery: escape hops strictly decrease a precomputed
     * distance-to-destination, so mixing them with normal hops could
     * oscillate, while staying in escape mode cannot.
     *
     * @return A link id, or kInvalidLink when @p dest is unreachable.
     */
    virtual LinkId
    escapeLink(NodeId current, NodeId dest) const
    {
        (void)current;
        (void)dest;
        return kInvalidLink;
    }

    /** Escape-channel scheme the simulator should use. */
    virtual EscapeScheme escapeScheme() const
    {
        return EscapeScheme::UpDown;
    }

    /**
     * Ring-escape support: the link continuing the covering directed
     * cycle from @p current (String Figure: the live space-0 ring).
     */
    virtual LinkId ringEscapeLink(NodeId current) const
    {
        (void)current;
        return kInvalidLink;
    }

    /** Position of @p u on the covering cycle (dateline detection). */
    virtual std::uint32_t ringPosition(NodeId u) const
    {
        (void)u;
        return 0;
    }

    /** Liveness of @p u (false while power-gated). */
    virtual bool nodeAlive(NodeId u) const
    {
        (void)u;
        return true;
    }

    /** Table II feature flags. */
    virtual TopologyFeatures features() const { return {}; }
};

/**
 * Walk a packet from @p src to @p dst taking the top routing
 * candidate at every hop (no congestion), as the hop-count analyses
 * in Fig 5 / Fig 9(a) require for routed (not just shortest) paths.
 * Mirrors the simulator: a stall engages escape mode permanently.
 *
 * @return Hop count, or -1 if the walk dead-ends or exceeds 4N hops.
 */
inline int routedHops(const Topology &topo, NodeId src, NodeId dst);

/** Result of probeRoutedHops: routed-path quality over node pairs. */
struct RoutedProbe {
    /** Mean routed hops over delivered pairs; -1 when none. */
    double avgHops = -1.0;
    /** Delivered / attempted, percent (attempted excludes s == t
     *  and pairs with a gated endpoint). */
    double deliveredPct = 0.0;
    std::size_t attempted = 0;
    std::size_t delivered = 0;
};

/**
 * Probe routed-path quality: walk @p samples random (or, when
 * @p samples <= 0, all) live ordered pairs with routedHops and
 * aggregate. The shared engine behind the Fig 9(a) hop counts and
 * the routing-table / reconfiguration ablations.
 */
RoutedProbe probeRoutedHops(const Topology &topo, Rng &rng,
                            int samples);


inline int
routedHops(const Topology &topo, NodeId src, NodeId dst)
{
    if (src == dst)
        return 0;
    const int limit = static_cast<int>(topo.numNodes()) * 4 + 16;
    LinkId candidates[kMaxRouteCandidates];
    NodeId at = src;
    bool escape = false;
    for (int hops = 0; hops < limit; ++hops) {
        if (at == dst)
            return hops;
        LinkId next = kInvalidLink;
        if (!escape) {
            if (topo.routeCandidates(at, dst, hops == 0,
                                     candidates) > 0)
                next = candidates[0];
            else
                escape = true;
        }
        if (escape)
            next = topo.escapeLink(at, dst);
        if (next == kInvalidLink)
            return -1;
        at = topo.graph().link(next).dst;
    }
    return -1;
}

} // namespace sf::net

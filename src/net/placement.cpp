#include "net/placement.hpp"

#include <cassert>
#include <cmath>

namespace sf::net {

namespace {

std::int32_t
gridColumns(std::size_t n)
{
    return static_cast<std::int32_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
}

} // namespace

Placement
Placement::rowMajor(std::size_t n)
{
    Placement p;
    p.cols_ = gridColumns(n);
    p.pos_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        p.pos_[i] = GridPos{static_cast<std::int32_t>(i) % p.cols_,
                            static_cast<std::int32_t>(i) / p.cols_};
    }
    return p;
}

Placement
Placement::snakeOrder(const std::vector<NodeId> &order)
{
    const std::size_t n = order.size();
    Placement p;
    p.cols_ = gridColumns(n);
    p.pos_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t row = static_cast<std::int32_t>(i) / p.cols_;
        std::int32_t col = static_cast<std::int32_t>(i) % p.cols_;
        if (row % 2 == 1)
            col = p.cols_ - 1 - col;  // snake: odd rows run backwards
        assert(order[i] < n);
        p.pos_[order[i]] = GridPos{col, row};
    }
    return p;
}

double
Placement::shortLinkFraction(const Graph &g, std::uint32_t span) const
{
    std::size_t total = 0;
    std::size_t short_links = 0;
    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        const Link &l = g.link(id);
        if (!l.enabled)
            continue;
        ++total;
        if (wireLength(l.src, l.dst) <= span)
            ++short_links;
    }
    return total ? static_cast<double>(short_links) /
                   static_cast<double>(total)
                 : 1.0;
}

double
Placement::averageWireLength(const Graph &g) const
{
    std::size_t total = 0;
    double sum = 0.0;
    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        const Link &l = g.link(id);
        if (!l.enabled)
            continue;
        ++total;
        sum += wireLength(l.src, l.dst);
    }
    return total ? sum / static_cast<double>(total) : 0.0;
}

void
applyPlacementLatency(Graph &g, const Placement &placement,
                      std::uint32_t span)
{
    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        Link &l = g.link(id);
        l.latency = placement.linkLatency(l.src, l.dst, span);
    }
}

} // namespace sf::net

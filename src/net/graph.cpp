#include "net/graph.hpp"

#include <algorithm>
#include <sstream>

namespace sf::net {

std::string
Graph::summary() const
{
    std::size_t min_deg = numNodes() ? SIZE_MAX : 0;
    std::size_t max_deg = 0;
    for (NodeId u = 0; u < numNodes(); ++u) {
        const std::size_t d = degreeOut(u);
        min_deg = std::min(min_deg, d);
        max_deg = std::max(max_deg, d);
    }
    std::ostringstream os;
    os << "Graph{nodes=" << numNodes()
       << ", links=" << numEnabledLinks() << "/" << numLinks()
       << ", out-degree=[" << min_deg << "," << max_deg << "]}";
    return os.str();
}

} // namespace sf::net
